//! Satellite (c): concurrency proptest — N threads hammering the same
//! counters/histograms lose no increments, and snapshots taken during
//! the storm never tear (every observed total is a value the metric
//! actually passed through, and totals are monotone across snapshots).

use lawsdb_obs::{Histogram, MetricsRegistry};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn counters_lose_no_increments(
        threads in 2usize..5,
        per_thread in 1usize..2_000,
        delta in 1u64..10,
    ) {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..threads {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let c = reg.counter("lawsdb_test_hits");
                    for _ in 0..per_thread {
                        c.add(delta);
                    }
                });
            }
        });
        let total = reg.snapshot().counter("lawsdb_test_hits");
        prop_assert_eq!(total, threads as u64 * per_thread as u64 * delta);
    }

    #[test]
    fn histograms_lose_no_samples_and_sums_agree(
        threads in 2usize..5,
        samples in prop::collection::vec(0u64..1_000_000, 1..500),
    ) {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..threads {
                let reg = Arc::clone(&reg);
                let samples = samples.clone();
                s.spawn(move || {
                    let h = reg.histogram("lawsdb_test_lat_us");
                    for &v in &samples {
                        h.observe(v);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let h = snap.histogram("lawsdb_test_lat_us").expect("registered");
        let n = threads as u64 * samples.len() as u64;
        prop_assert_eq!(h.count, n);
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), n);
        prop_assert_eq!(h.sum, samples.iter().sum::<u64>() * threads as u64);
    }

    #[test]
    fn snapshots_during_update_never_tear(rounds in 1usize..40) {
        // One writer bumps a counter in fixed quanta; a reader snapshots
        // continuously. Counts must be multiples of the quantum (no torn
        // read of a single add) and monotone non-decreasing.
        const QUANTUM: u64 = 3;
        let reg = Arc::new(MetricsRegistry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut seen = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let v = reg.snapshot().counter("lawsdb_test_mono");
                    seen.push((last, v));
                    last = v;
                }
                seen
            })
        };
        let c = reg.counter("lawsdb_test_mono");
        for _ in 0..rounds * 100 {
            c.add(QUANTUM);
        }
        stop.store(true, Ordering::Relaxed);
        let seen = reader.join().expect("reader thread");
        for (prev, cur) in seen {
            prop_assert!(cur >= prev, "snapshot went backwards: {prev} -> {cur}");
            prop_assert_eq!(cur % QUANTUM, 0);
        }
        prop_assert_eq!(
            reg.snapshot().counter("lawsdb_test_mono"),
            rounds as u64 * 100 * QUANTUM
        );
    }
}

#[test]
fn histogram_snapshot_count_never_disagrees_with_buckets() {
    // `count` is derived from the buckets in one pass, so even a
    // snapshot racing `observe` can never show count != sum(buckets).
    let h = Arc::new(Histogram::new());
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let h = Arc::clone(&h);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let s = h.snapshot();
                assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
            }
        })
    };
    for v in 0..200_000u64 {
        h.observe(v % 4096);
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().expect("reader thread");
    assert_eq!(h.get(), 200_000);
}
