//! Satellite (c): pin the disabled-path cost. With no subscriber
//! installed, `Tracer::emit` is one relaxed atomic load; a burst of
//! disabled emits must be within a small constant factor of an
//! equivalent burst of plain atomic loads, and must never invoke the
//! field closure. The precise ≤2%-of-query-time gate lives in the
//! bench sweep (`BENCH_obs.json`); this test is the functional floor
//! that runs everywhere.

use lawsdb_obs::trace::tracer;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

const ITERS: u64 = 2_000_000;

fn best_of<F: FnMut() -> u128>(mut f: F, trials: usize) -> u128 {
    (0..trials).map(|_| f()).min().unwrap_or(u128::MAX)
}

#[test]
fn disabled_emit_is_a_single_flag_check() {
    // No subscriber installed in this process.
    assert!(!tracer().is_enabled());

    let calls = AtomicU64::new(0);
    let disabled = best_of(
        || {
            let start = Instant::now();
            for i in 0..ITERS {
                tracer().emit("obs.overhead.probe", || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    vec![("i", lawsdb_obs::FieldValue::U64(i))]
                });
            }
            start.elapsed().as_nanos()
        },
        5,
    );
    assert_eq!(calls.load(Ordering::Relaxed), 0, "disabled emit built fields");

    // Baseline: the same loop doing just the relaxed flag load.
    let flag = AtomicBool::new(false);
    let baseline = best_of(
        || {
            let start = Instant::now();
            let mut acc = 0u64;
            for _ in 0..ITERS {
                acc += u64::from(flag.load(Ordering::Relaxed));
            }
            std::hint::black_box(acc);
            start.elapsed().as_nanos()
        },
        5,
    );

    let per_emit_ns = disabled as f64 / ITERS as f64;
    // Generous functional bound: a disabled emit must stay in the
    // few-nanoseconds regime (the bench sweep enforces the real gate).
    assert!(
        per_emit_ns < 50.0,
        "disabled emit cost {per_emit_ns:.2} ns/op (baseline load: {:.2} ns/op)",
        baseline as f64 / ITERS as f64
    );
}
