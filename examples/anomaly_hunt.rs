//! Hunting transients by goodness-of-fit (Section 4.2's data anomalies):
//! the sources whose intensity defies the spectral law are exactly the
//! interesting ones.
//!
//! ```text
//! cargo run --release --example anomaly_hunt
//! ```

use lawsdb::approx::anomaly::{precision_at_k, rank_anomalies, recall_at_k, MisfitScore};
use lawsdb::data::lofar::{AnomalyKind, LofarConfig, LofarDataset};
use lawsdb::fit::FitOptions;
use lawsdb::prelude::*;

fn main() {
    let cfg = LofarConfig {
        sources: 3_000,
        anomaly_fraction: 0.02,
        ..LofarConfig::default()
    };
    let data = LofarDataset::generate(&cfg);
    let truth = data.anomalies.clone();
    println!(
        "{} sources, {} hidden transients (flat spectra and turn-overs)",
        cfg.sources,
        truth.len()
    );

    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table).expect("fresh catalog");
    let model = db
        .capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            &FitOptions::default().with_initial("alpha", -0.7),
        )
        .expect("spectral capture");

    for score in [MisfitScore::ResidualSe, MisfitScore::OneMinusR2] {
        let ranked = rank_anomalies(&model, score);
        let k = truth.len();
        println!(
            "\nscoring by {:?}: precision@{k} = {:.2}, recall@{} = {:.2}",
            score,
            precision_at_k(&ranked, &truth, k),
            2 * k,
            recall_at_k(&ranked, &truth, 2 * k)
        );
        println!("top suspects:");
        for a in ranked.iter().take(5) {
            let kind = data
                .truth
                .get(a.key as usize)
                .and_then(|t| t.anomaly)
                .map(|k| match k {
                    AnomalyKind::FlatNoise => "flat spectrum",
                    AnomalyKind::TurnOver => "spectral turn-over",
                })
                .unwrap_or("conforming (false alarm)");
            println!("  source {:>5}  score {:.4}  -> {kind}", a.key, a.score);
        }
    }
}
