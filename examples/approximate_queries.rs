//! Approximate query answering three ways (Sections 1 and 4.2): the
//! captured model vs uniform sampling vs a histogram synopsis, on the
//! time-series workload — plus the analytic shortcut for linear models.
//!
//! ```text
//! cargo run --release --example approximate_queries
//! ```

use lawsdb::approx::histogram::Histogram;
use lawsdb::approx::sampling::TableSample;
use lawsdb::approx::Strategy;
use lawsdb::data::timeseries::{TimeSeriesConfig, TimeSeriesDataset};
use lawsdb::fit::FitOptions;
use lawsdb::prelude::*;

fn main() {
    let cfg = TimeSeriesConfig { sensors: 100, ticks: 2000, ..Default::default() };
    let data = TimeSeriesDataset::generate(&cfg);
    let table = data.table.clone();
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table).expect("fresh catalog");
    db.capture_model("readings", "value ~ a + b * ts", Some("sensor"), &FitOptions::default())
        .expect("linear capture");

    let sql = "SELECT AVG(value) AS v FROM readings";
    let exact = db.query(sql).expect("exact").table.column("v").expect("col").f64_data().expect("f64")[0];
    println!("exact AVG(value) over {} rows: {:.4}", table.row_count(), exact);

    // 1. The captured model: analytic closed form, nothing materialized.
    let a = db.query_approx(sql).expect("model answers");
    assert_eq!(a.strategy, Strategy::AnalyticAggregate);
    let model_v = a.table.column("value").expect("col").f64_data().expect("f64")[0];
    println!(
        "model (analytic)  : {:.4}  err {:.4}%  rows scanned 0, tuples materialized 0",
        model_v,
        (model_v - exact).abs() / exact * 100.0
    );

    // 2. Sampling: 1% uniform sample, CLT error bar.
    let sample = TableSample::uniform(&table, 0.01, 42).expect("sample");
    let keep: Vec<usize> = (0..sample.sample.row_count()).collect();
    let est = sample.estimate_avg("value", &keep, 0.95).expect("estimate");
    println!(
        "sampling (1%)     : {:.4}  err {:.4}%  ± {:.4} (95% CI), {} rows kept",
        est.value,
        (est.value - exact).abs() / exact * 100.0,
        est.ci_half_width,
        sample.sample.row_count()
    );

    // 3. Histogram synopsis: 64 equi-depth buckets over the value column.
    let values = table.column("value").expect("col").f64_data().expect("f64");
    let hist = Histogram::equi_depth(values, 64).expect("histogram");
    let (lo, hi) = lawsdb::linalg::ops::min_max(values).expect("non-empty");
    let hist_v = hist.estimate_avg(lo, hi);
    println!(
        "histogram (64)    : {:.4}  err {:.4}%  synopsis {} bytes",
        hist_v,
        (hist_v - exact).abs() / exact * 100.0,
        hist.byte_size()
    );

    // Point queries, where the differences bite hardest.
    let point = "SELECT value FROM readings WHERE sensor = 17 AND ts = 10000";
    let pe = db.query(point).expect("exact").table.column("value").expect("col").f64_data().expect("f64")[0];
    let pa = db.query_approx(point).expect("model");
    let pav = pa.table.column("value").expect("col").f64_data().expect("f64")[0];
    println!(
        "\npoint query: exact {:.4}, model {:.4} ± {:.4} ({:?}, zero IO)",
        pe,
        pav,
        pa.error_bound.unwrap_or(f64::NAN),
        pa.strategy
    );
}
