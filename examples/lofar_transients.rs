//! The paper's running example, end to end: the LOFAR Transients
//! workload (Section 2).
//!
//! Generates a synthetic LOFAR sample (per-source power laws, four
//! frequency bands, interference noise, a few anomalous sources),
//! captures the spectral model through the interception session, and
//! then answers both of the paper's example SQL queries from the model.
//!
//! ```text
//! cargo run --release --example lofar_transients
//! ```

use lawsdb::core::FitOptions;
use lawsdb::data::lofar::{LofarConfig, LofarDataset};
use lawsdb::prelude::*;

fn main() {
    // 2,000 sources ≈ 80k measurements; use LofarConfig::paper_scale()
    // for the full 35,692-source / 1.45M-row dataset.
    let cfg = LofarConfig::default();
    let data = LofarDataset::generate(&cfg);
    println!(
        "generated {} measurements over {} sources ({} anomalous)",
        data.rows(),
        cfg.sources,
        data.anomalies.len()
    );

    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0; // heavy interference noise — accept the fit
    let raw_bytes = data.table.byte_size();
    db.register_table(data.table).expect("fresh catalog");

    // Figure 2: fit intercepted inside the database.
    let mut session = db.session();
    let frame = session.frame("measurements").expect("registered");
    let report = session
        .fit(
            &frame,
            "intensity ~ p * nu ^ alpha",
            // The paper leaves convergence-friendly starting values to
            // the model author; a radio astronomer starts α near −0.7.
            FitOptions::grouped_by("source")
                .with_raw(lawsdb::fit::FitOptions::default().with_initial("alpha", -0.7)),
        )
        .expect("spectral model fits");
    println!(
        "captured spectral model: {} sources fitted, pooled R² = {:.3}",
        report.parameter_vectors, report.overall_r2
    );
    println!(
        "storage: {} raw -> {} parameters ({:.1}%)",
        raw_bytes,
        report.parameter_bytes,
        report.parameter_bytes as f64 / raw_bytes as f64 * 100.0
    );

    // The paper's first query: point reconstruction.
    let q1 = "SELECT intensity FROM measurements WHERE source = 42 AND nu = 0.14";
    let a1 = session.query_approx(q1).expect("query 1 answerable");
    let v1 = a1.table.column("intensity").expect("col").f64_data().expect("f64")[0];
    println!("\nQ1 {q1}");
    println!(
        "   -> {:.4} ± {:.4} Jy, {} rows scanned",
        v1,
        a1.error_bound.unwrap_or(f64::NAN),
        a1.rows_scanned
    );

    // The paper's second query: predicate over the enumerated space.
    let q2 = "SELECT source, intensity FROM measurements \
              WHERE nu = 0.15 AND intensity > 3.0 ORDER BY intensity DESC LIMIT 5";
    let a2 = session.query_approx(q2).expect("query 2 answerable");
    println!("\nQ2 {q2}");
    println!(
        "   -> {} bright sources (from {} reconstructed tuples, 0 base rows):",
        a2.table.row_count(),
        a2.tuples_reconstructed
    );
    for i in 0..a2.table.row_count() {
        let row = a2.table.row(i).expect("in range");
        println!("      source {}  intensity {}", row[0], row[1]);
    }

    // Anomalies: the sources that defy the law (Section 4.2).
    let model = db.models().get(report.model).expect("stored");
    let ranked = lawsdb::approx::anomaly::rank_anomalies(
        &model,
        lawsdb::approx::anomaly::MisfitScore::OneMinusR2,
    );
    let k = data.anomalies.len();
    let hits = ranked[..k.min(ranked.len())]
        .iter()
        .filter(|a| data.anomalies.contains(&a.key))
        .count();
    println!(
        "\nanomaly hunt: top-{k} misfit sources contain {hits} of the {k} injected anomalies"
    );

    // Model exploration (Section 4.2): where does the law change fastest?
    let steep = session.explore(report.model, 3).expect("explorable model");
    println!("\nsteepest regions of the captured parameter space:");
    for p in steep {
        println!(
            "  source {:?} at nu = {:.2} GHz: |dI/dnu| = {:.3}",
            p.group.unwrap_or(-1),
            p.inputs[0],
            p.gradient_norm
        );
    }
}
