//! Semantic compression (Section 4.1): store model + residuals instead
//! of the raw column, reconstruct losslessly.
//!
//! ```text
//! cargo run --release --example semantic_compression
//! ```

use lawsdb::core::storage_mgr::{compress_column, decompress_column, CompressionMode};
use lawsdb::data::retail::{RetailConfig, RetailDataset};
use lawsdb::fit::FitOptions;
use lawsdb::prelude::*;
use lawsdb::storage::compress::{generic_compress, CompressionStats};

fn main() {
    // The Section 6 proposal: benchmark-style generated data carries
    // considerable regularity. Units follow a seasonal + growth law.
    let retail = RetailDataset::generate(&RetailConfig::default());
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(retail.table).expect("fresh catalog");

    // Capture per-store seasonality: a linear law in the two derived
    // regressors would be ideal; the formula language lets us write the
    // actual seasonal shape directly.
    let model = db
        .capture_model(
            "store_sales",
            "units ~ base + g * day + amp * sin(0.0172142 * day)",
            Some("store"),
            &FitOptions::default(),
        )
        .expect("seasonal model fits");
    println!("captured seasonal model: pooled R² = {:.4}", model.overall_r2);

    let table = db.table("store_sales").expect("registered");
    let raw = table.column("units").expect("col").byte_size();

    // Generic baseline: LZSS+Huffman over the raw bytes.
    let raw_le: Vec<u8> = table
        .column("units")
        .expect("col")
        .f64_data()
        .expect("f64")
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    let generic = CompressionStats {
        raw_bytes: raw,
        compressed_bytes: generic_compress(&raw_le).len(),
    };

    // Semantic: residuals against the captured model.
    let lossless = compress_column(&model, &table, CompressionMode::Lossless)
        .expect("semantic compression");
    let quantized = compress_column(&model, &table, CompressionMode::Quantized { eps: 0.5 })
        .expect("semantic compression");

    println!("\nunits column: {} raw", raw);
    println!(
        "  lzss+huffman        : {:>8} bytes ({:>5.1}%)",
        generic.compressed_bytes,
        generic.ratio() * 100.0
    );
    println!(
        "  semantic (lossless) : {:>8} bytes ({:>5.1}%)",
        lossless.compressed_bytes(),
        lossless.ratio() * 100.0
    );
    println!(
        "  semantic (±0.25)    : {:>8} bytes ({:>5.1}%)",
        quantized.compressed_bytes(),
        quantized.ratio() * 100.0
    );

    // Verify the paper's "without loss of information".
    let back = decompress_column(&lossless, &model, &table).expect("reconstruct");
    let original = table.column("units").expect("col").f64_data().expect("f64");
    assert!(back.iter().zip(original).all(|(a, b)| a.to_bits() == b.to_bits()));
    println!("\nlossless reconstruction verified bit-exact over {} rows", back.len());
}
