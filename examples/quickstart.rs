//! Quickstart: capture a model, answer a query with zero IO.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lawsdb::prelude::*;

fn main() {
    // A tiny measurements table: ten "sources", each following its own
    // power law I = p · ν^α, observed at ten frequencies.
    let mut tb = TableBuilder::new("measurements");
    let mut source = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for s in 0..10i64 {
        let p = 1.0 + s as f64 * 0.3;
        let alpha = -0.5 - s as f64 * 0.05;
        for i in 0..10 {
            let f = 0.10 + 0.01 * i as f64;
            source.push(s);
            nu.push(f);
            intensity.push(p * f.powf(alpha));
        }
    }
    tb.add_i64("source", source);
    tb.add_f64("nu", nu);
    tb.add_f64("intensity", intensity);

    let db = LawsDb::new();
    db.register_table(tb.build().expect("consistent table")).expect("fresh catalog");

    // The analyst fits through a strawman session — LawsDB intercepts
    // the fit (Figure 2 of the paper) and stores the model.
    let mut session = db.session();
    let frame = session.frame("measurements").expect("table exists");
    let report = session
        .fit(&frame, "intensity ~ p * nu ^ alpha", FitOptions::grouped_by("source"))
        .expect("power law fits");
    println!(
        "captured model {:?}: R² = {:.4}, {} parameter vectors ({} bytes)",
        report.model, report.overall_r2, report.parameter_vectors, report.parameter_bytes
    );

    // Later queries are answered from the model alone: zero rows
    // scanned, error bound attached.
    let answer = session
        .query_approx("SELECT intensity FROM measurements WHERE source = 4 AND nu = 0.14")
        .expect("model answers");
    let value = answer.table.column("intensity").expect("col").f64_data().expect("f64")[0];
    println!(
        "approximate answer: intensity = {:.4} ± {:.4} (rows scanned: {})",
        value,
        answer.error_bound.unwrap_or(f64::NAN),
        answer.rows_scanned
    );
    assert_eq!(answer.rows_scanned, 0);

    // The same query executed exactly, for comparison.
    let exact = db
        .query("SELECT intensity FROM measurements WHERE source = 4 AND nu = 0.14")
        .expect("exact path");
    println!("exact path scanned {} rows", exact.rows_scanned);
}
